package obs

// EventLog: a lock-sharded, bounded in-memory journal of typed fleet
// events — the third pillar of the observability layer next to the metrics
// registry and the span collector. Where metrics answer "how much" and
// traces answer "how long", the journal answers "what happened when": a
// campaign won, a lease granted, a fence rejected, a worker died, a chunk
// failed over, a cache entry evicted. One log sits in every electd daemon
// (backing GET /v1/events and the /v1/events/stream SSE feed), and
// GET /v1/fleetz merges every node's recent events into one fleet-wide
// timeline.
//
// The discipline mirrors SpanCollector: memory is fixed at construction,
// the newest events win, every method is safe for concurrent use, and every
// method is nil-receiver-safe — a disabled journal is a nil *EventLog whose
// Emit costs one nil check and zero heap allocations (pinned by
// TestNilEventLogEmitAllocs).

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one journal entry: what happened (Kind), when (TS, unix
// microseconds), where (Node), plus free-form detail fields. Seq is the
// log-wide insertion sequence — strictly increasing, so ?since= paging and
// fleet merges have a stable order even within one microsecond.
type Event struct {
	Seq    uint64            `json:"seq"`
	TS     int64             `json:"ts_us"`
	Node   string            `json:"node,omitempty"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// eventShards is the journal's lock-shard count. Events shard by sequence
// number, so concurrent emitters from different subsystems rarely contend.
const eventShards = 16

type eventShard struct {
	mu   sync.Mutex
	buf  []Event // ring: slot = writes % cap
	next int
}

// DefaultEventCapacity bounds a log built with capacity 0: a few minutes of
// control-plane and job churn without holding a long daemon's full history.
const DefaultEventCapacity = 1024

// EventLog stores events in a bounded ring per shard and fans new events
// out to subscribers (the SSE stream). All methods are safe for concurrent
// use and nil-receiver-safe.
type EventLog struct {
	node   string
	seq    atomic.Uint64
	shards [eventShards]eventShard

	subMu   sync.Mutex
	subs    map[int]chan Event
	nextSub int
}

// NewEventLog builds a journal holding at most capacity events (rounded up
// to a multiple of the shard count; <= 0 means DefaultEventCapacity). node
// is stamped on every event this log emits — the daemon's instance name,
// so merged fleet timelines tell nodes apart.
func NewEventLog(capacity int, node string) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	per := (capacity + eventShards - 1) / eventShards
	l := &EventLog{node: node, subs: make(map[int]chan Event)}
	for i := range l.shards {
		l.shards[i].buf = make([]Event, 0, per)
	}
	return l
}

// Node is the name stamped on this log's events ("" on a nil log).
func (l *EventLog) Node() string {
	if l == nil {
		return ""
	}
	return l.node
}

// Emit journals one event of the given kind with alternating key/value
// detail pairs (a trailing odd key is dropped). A nil log ignores the call
// for the price of one branch — and because the variadic slice never
// escapes, the disabled path allocates nothing.
func (l *EventLog) Emit(kind string, kv ...string) {
	if l == nil {
		return
	}
	var fields map[string]string
	if len(kv) >= 2 {
		fields = make(map[string]string, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			fields[kv[i]] = kv[i+1]
		}
	}
	e := Event{
		TS:     time.Now().UnixMicro(),
		Node:   l.node,
		Kind:   kind,
		Fields: fields,
	}
	e.Seq = l.seq.Add(1)
	sh := &l.shards[e.Seq%eventShards]
	sh.mu.Lock()
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, e)
	} else {
		sh.buf[sh.next] = e
	}
	sh.next = (sh.next + 1) % cap(sh.buf)
	sh.mu.Unlock()
	l.notify(e)
}

// notify fans one event out to subscribers, dropping it on full channels —
// a slow SSE consumer loses events, never blocks an emitter.
func (l *EventLog) notify(e Event) {
	l.subMu.Lock()
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default:
		}
	}
	l.subMu.Unlock()
}

// Len reports how many events are currently held.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	n := 0
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		n += len(sh.buf)
		sh.mu.Unlock()
	}
	return n
}

// Events returns held events with Seq > since, oldest first, keeping only
// the newest limit when more qualify (limit <= 0 means no cap). since=0
// returns everything held.
func (l *EventLog) Events(since uint64, limit int) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for i := range l.shards {
		sh := &l.shards[i]
		sh.mu.Lock()
		for _, e := range sh.buf {
			if e.Seq > since {
				out = append(out, e)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// Subscribe registers for every subsequent event: the returned channel
// (buffered; events are dropped, not blocked, when the consumer lags)
// receives each Emit until stop is called. The SSE stream endpoint sits
// directly on this. A nil log returns a nil channel (which never delivers)
// and a no-op stop.
func (l *EventLog) Subscribe() (<-chan Event, func()) {
	if l == nil {
		return nil, func() {}
	}
	ch := make(chan Event, 64)
	l.subMu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.subMu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			l.subMu.Lock()
			delete(l.subs, id)
			l.subMu.Unlock()
			close(ch)
		})
	}
}
