package obs

// SpanCollector: a lock-sharded, bounded in-memory span store, plus the
// deterministic Chrome trace-event exporter. One collector sits in every
// electd daemon (backing GET /v1/traces) and one in a tracing sweep client
// (cmd/sweep -trace-out), where coordinator spans and the worker spans
// returned in chunk responses merge into a single fleet-wide trace.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// spanCtxKey carries a SpanContext through a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns a context carrying sc; SpanFromContext retrieves
// it. This is how the current span identity flows within a process (HTTP
// middleware → handler → client call) between the header hops.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, or the zero
// (invalid) context when none is.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// spanShards is the collector's lock-shard count. Spans shard by trace id,
// so one trace's spans live in one shard and Trace() takes a single lock.
const spanShards = 16

// entry is one stored span plus its collector-wide insertion sequence (the
// recency order TraceIDs and Spans report).
type entry struct {
	seq  uint64
	span Span
}

type spanShard struct {
	mu   sync.Mutex
	buf  []entry // ring: slot = writes % cap
	next int     // write cursor
	full bool
}

// SpanCollector stores completed spans in a bounded ring per shard: memory
// is fixed at construction, the newest spans win, and the oldest fall off
// silently. All methods are safe for concurrent use, and every method is
// nil-receiver-safe — a disabled tracing layer is a nil *SpanCollector, and
// its Add costs exactly one nil check (the RoundTrace discipline; the
// simsync allocation-budget test pins the zero-allocation claim).
type SpanCollector struct {
	seq    atomic.Uint64
	shards [spanShards]spanShard
}

// DefaultSpanCapacity bounds a collector built with capacity 0: enough for
// a few hundred fleet requests at ~4 spans each without holding a long
// daemon's full history.
const DefaultSpanCapacity = 4096

// NewSpanCollector builds a collector holding at most capacity spans
// (rounded up to a multiple of the shard count; <= 0 means
// DefaultSpanCapacity).
func NewSpanCollector(capacity int) *SpanCollector {
	if capacity <= 0 {
		capacity = DefaultSpanCapacity
	}
	per := (capacity + spanShards - 1) / spanShards
	c := &SpanCollector{}
	for i := range c.shards {
		c.shards[i].buf = make([]entry, 0, per)
	}
	return c
}

// Add stores one completed span. A nil collector ignores the call.
func (c *SpanCollector) Add(s Span) {
	if c == nil {
		return
	}
	sh := &c.shards[s.Trace[15]%spanShards]
	seq := c.seq.Add(1)
	sh.mu.Lock()
	if len(sh.buf) < cap(sh.buf) {
		sh.buf = append(sh.buf, entry{seq, s})
	} else {
		sh.buf[sh.next] = entry{seq, s}
		sh.full = true
	}
	sh.next = (sh.next + 1) % cap(sh.buf)
	sh.mu.Unlock()
}

// AddAll stores a batch of spans (worker spans merged from a chunk
// response). A nil collector ignores the call.
func (c *SpanCollector) AddAll(spans []Span) {
	if c == nil {
		return
	}
	for _, s := range spans {
		c.Add(s)
	}
}

// Len reports how many spans are currently held.
func (c *SpanCollector) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.buf)
		sh.mu.Unlock()
	}
	return n
}

// snapshot copies every held entry.
func (c *SpanCollector) snapshot() []entry {
	var out []entry
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out = append(out, sh.buf...)
		sh.mu.Unlock()
	}
	return out
}

// Spans returns every held span, newest-first by insertion order.
func (c *SpanCollector) Spans() []Span {
	if c == nil {
		return nil
	}
	es := c.snapshot()
	sort.Slice(es, func(i, j int) bool { return es[i].seq > es[j].seq })
	out := make([]Span, len(es))
	for i, e := range es {
		out[i] = e.span
	}
	return out
}

// Trace returns every held span of one trace, in insertion order (oldest
// first — roughly causal, since parents are recorded after their remote
// children but local emitters record in completion order).
func (c *SpanCollector) Trace(id TraceID) []Span {
	if c == nil {
		return nil
	}
	sh := &c.shards[id[15]%spanShards]
	sh.mu.Lock()
	es := make([]entry, 0, 8)
	for _, e := range sh.buf {
		if e.span.Trace == id {
			es = append(es, e)
		}
	}
	sh.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].seq < es[j].seq })
	out := make([]Span, len(es))
	for i, e := range es {
		out[i] = e.span
	}
	return out
}

// TraceIDs returns the distinct trace ids held, newest-first by the
// insertion order of each trace's most recent span, capped at limit
// (<= 0 means no cap).
func (c *SpanCollector) TraceIDs(limit int) []TraceID {
	if c == nil {
		return nil
	}
	es := c.snapshot()
	sort.Slice(es, func(i, j int) bool { return es[i].seq > es[j].seq })
	seen := make(map[TraceID]struct{}, len(es))
	var out []TraceID
	for _, e := range es {
		if _, dup := seen[e.span.Trace]; dup {
			continue
		}
		seen[e.span.Trace] = struct{}{}
		out = append(out, e.span.Trace)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// WriteChromeTrace renders spans as Chrome trace-event JSON (the
// "JSON Object Format": a traceEvents array of complete "X" events plus
// process-name metadata), loadable in about:tracing and Perfetto. Output is
// a pure function of the spans: services map to pids in sorted-name order,
// spans sort by (start, trace, span id), and each span is packed into the
// lowest non-overlapping lane (tid) of its service, so the export is
// golden-testable byte for byte.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Trace != b.Trace {
			return a.Trace.String() < b.Trace.String()
		}
		return a.ID.String() < b.ID.String()
	})

	// Service → pid, in sorted service-name order.
	services := make([]string, 0, 4)
	seen := make(map[string]int)
	for _, s := range sorted {
		if _, ok := seen[s.Service]; !ok {
			seen[s.Service] = 0
			services = append(services, s.Service)
		}
	}
	sort.Strings(services)
	pid := make(map[string]int, len(services))
	for i, svc := range services {
		pid[svc] = i + 1
	}

	// Lane packing per service: each span takes the lowest tid whose last
	// span ended at or before this span starts.
	laneEnd := make(map[string][]int64, len(services))
	tid := make([]int, len(sorted))
	for i, s := range sorted {
		lanes := laneEnd[s.Service]
		placed := false
		for l, end := range lanes {
			if end <= s.Start {
				lanes[l] = s.End()
				tid[i] = l + 1
				placed = true
				break
			}
		}
		if !placed {
			lanes = append(lanes, s.End())
			tid[i] = len(lanes)
		}
		laneEnd[s.Service] = lanes
	}

	type event struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  *int64         `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]event, 0, len(sorted)+len(services))
	for _, svc := range services {
		events = append(events, event{
			Name: "process_name", Ph: "M", Pid: pid[svc], Tid: 0,
			Args: map[string]any{"name": svc},
		})
	}
	for i, s := range sorted {
		dur := s.Dur
		args := map[string]any{
			"trace_id": s.Trace.String(),
			"span_id":  s.ID.String(),
		}
		if !s.Parent.IsZero() {
			args["parent_id"] = s.Parent.String()
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		events = append(events, event{
			Name: s.Name, Cat: s.Service, Ph: "X", Ts: s.Start, Dur: &dur,
			Pid: pid[s.Service], Tid: tid[i], Args: args,
		})
	}

	var b strings.Builder
	b.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(',')
		}
		data, err := json.Marshal(ev) // map keys sort, so args are deterministic
		if err != nil {
			return err
		}
		b.Write(data)
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Waterfall renders an ASCII timeline of root and its descendants among
// spans: one line per span, indented by tree depth, with a bar scaled to
// the subtree's wall-clock window and the duration and attributes printed
// after it. Each line is prefixed with prefix (the sweep CLIs pass "# " to
// match their comment footers). Children sort by start time, then span id.
func Waterfall(w io.Writer, prefix string, root Span, spans []Span, width int) {
	if width <= 0 {
		width = 40
	}
	children := make(map[SpanID][]Span)
	for _, s := range spans {
		if !s.Parent.IsZero() {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	for _, cs := range children {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Start != cs[j].Start {
				return cs[i].Start < cs[j].Start
			}
			return cs[i].ID.String() < cs[j].ID.String()
		})
	}
	window := root.Dur
	if window <= 0 {
		window = 1
	}
	var walk func(s Span, depth int)
	walk = func(s Span, depth int) {
		off := int((s.Start - root.Start) * int64(width) / window)
		bar := int(s.Dur * int64(width) / window)
		if off < 0 {
			off = 0
		}
		if off > width {
			off = width
		}
		if bar < 1 {
			bar = 1
		}
		if off+bar > width {
			bar = width - off
			if bar < 1 {
				bar, off = 1, width-1
			}
		}
		line := strings.Repeat(" ", off) + strings.Repeat("█", bar) +
			strings.Repeat(" ", width-off-bar)
		label := strings.Repeat("  ", depth) + s.Service + " " + s.Name
		fmt.Fprintf(w, "%s%-*s |%s| %s%s\n", prefix, 34, label, line,
			fmtMicros(s.Dur), fmtAttrs(s.Attrs))
		for _, c := range children[s.ID] {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
}

// fmtMicros renders a microsecond duration compactly (µs/ms/s).
func fmtMicros(us int64) string {
	switch {
	case us >= 1_000_000:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	case us >= 1_000:
		return fmt.Sprintf("%.1fms", float64(us)/1e3)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}

// fmtAttrs renders attributes as " k=v" pairs in sorted key order.
func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(" ")
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(attrs[k])
	}
	return b.String()
}
