package obs

import (
	"os"
	"testing"
	"time"
)

func TestVerdictMerging(t *testing.T) {
	if WorseVerdict(HealthHealthy, HealthDegraded) != HealthDegraded {
		t.Fatal("degraded should beat healthy")
	}
	if WorseVerdict(HealthCritical, HealthDegraded) != HealthCritical {
		t.Fatal("critical should beat degraded")
	}
	if WorseVerdict(HealthHealthy, "unreachable") != "unreachable" {
		t.Fatal("unknown verdicts must rank worst")
	}
}

func TestSLOTrackerVerdicts(t *testing.T) {
	var sample SLOSample
	tr := NewSLOTracker(func() SLOSample { return sample }, 0.01, time.Minute)
	now := time.Unix(1000, 0)
	tr.setClock(func() time.Time { return now })

	// Zero traffic: healthy, no burn.
	st := tr.Status()
	if st.Verdict != HealthHealthy || st.BurnRate != 0 {
		t.Fatalf("idle status = %+v, want healthy", st)
	}

	// 1000 requests, 5 errors: bad ratio 0.5%, burn 0.5 — healthy.
	now = now.Add(10 * time.Second)
	sample = SLOSample{Requests: 1000, Errors: 5}
	st = tr.Status()
	if st.Verdict != HealthHealthy {
		t.Fatalf("burn 0.5 status = %+v, want healthy", st)
	}
	if st.Requests != 1000 || st.BurnRate != 0.5 {
		t.Fatalf("evidence = %+v, want 1000 reqs at burn 0.5", st)
	}

	// +1000 requests, +30 more bad (20 errors, 10 slow): window bad ratio
	// 35/2000 = 1.75%, burn 1.75 — degraded.
	now = now.Add(10 * time.Second)
	sample = SLOSample{Requests: 2000, Errors: 25, Slow: 10}
	st = tr.Status()
	if st.Verdict != HealthDegraded {
		t.Fatalf("burn 1.75 status = %+v, want degraded", st)
	}

	// +1000 requests, +300 errors: ratio 335/3000 = 11.2%, burn 11.2 —
	// critical (fast burn).
	now = now.Add(10 * time.Second)
	sample = SLOSample{Requests: 3000, Errors: 325, Slow: 10}
	st = tr.Status()
	if st.Verdict != HealthCritical {
		t.Fatalf("burn 11 status = %+v, want critical", st)
	}
	if st.WindowSeconds != 30 {
		t.Fatalf("window = %vs, want 30", st.WindowSeconds)
	}

	// Errors stop; once the bad samples age out of the 1-minute window the
	// verdict recovers.
	for i := 0; i < 12; i++ {
		now = now.Add(10 * time.Second)
		sample.Requests += 1000
		st = tr.Status()
	}
	if st.Verdict != HealthHealthy {
		t.Fatalf("post-recovery status = %+v, want healthy", st)
	}
}

func TestSLOTrackerWindowTrim(t *testing.T) {
	tr := NewSLOTracker(func() SLOSample { return SLOSample{} }, 0, 30*time.Second)
	now := time.Unix(2000, 0)
	tr.setClock(func() time.Time { return now })
	for i := 0; i < 100; i++ {
		tr.Status()
		now = now.Add(time.Second)
	}
	tr.mu.Lock()
	n := len(tr.points)
	tr.mu.Unlock()
	// 30s window at 1s steps: ~30 live points plus one baseline.
	if n > 35 {
		t.Fatalf("ring holds %d points, want bounded near window/step", n)
	}
}

func TestProcessRSSBytes(t *testing.T) {
	// On Linux this must report a live positive RSS; elsewhere 0 is the
	// documented graceful answer. The test binary certainly has pages
	// resident, so on procfs systems assert > 0.
	rss := ProcessRSSBytes()
	if _, err := os.Stat("/proc/self/statm"); err == nil && rss <= 0 {
		t.Fatalf("ProcessRSSBytes = %d on a procfs system, want > 0", rss)
	}
	if rss < 0 {
		t.Fatalf("ProcessRSSBytes = %d, want non-negative", rss)
	}
}
