package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	// le semantics are inclusive: 1 lands in the le="1" bucket, 2 in le="2".
	want := []int64{2, 2, 1, 1} // (..1], (1..2], (2..5], (5..+Inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-18) > 1e-9 {
		t.Errorf("sum = %v, want 18", h.Sum())
	}
}

// TestHistogramIgnoresInvalid pins the Observe guard: NaN would poison the
// sum (and with it the golden exposition) and negative values would skew it
// below the bucket counts, so both are dropped without touching any state.
func TestHistogramIgnoresInvalid(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(math.NaN())
	h.Observe(-1)
	h.Observe(math.Inf(-1))
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("invalid observations recorded: count=%d sum=%v", h.Count(), h.Sum())
	}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != 0 {
			t.Fatalf("bucket %d = %d after invalid observations", i, got)
		}
	}
	// Valid observations still land, and zero is valid.
	h.Observe(0)
	h.Observe(1.5)
	if h.Count() != 2 || math.Abs(h.Sum()-1.5) > 1e-9 {
		t.Fatalf("valid observations after guard: count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 10 observations in (1, 2]: the distribution is "uniform inside the
	// bucket" by the interpolation model, so p50 is the bucket midpoint.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 = %v, want 1.5", got)
	}
	if got := h.Quantile(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("p100 = %v, want 2 (bucket upper bound)", got)
	}
	// Observations beyond the last finite bound clamp to it.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	// Zero observations: every quantile is 0, including the extremes.
	h := NewHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty q%v = %v, want 0", q, got)
		}
	}

	// Single-bucket histogram: everything interpolates inside [0, bound].
	one := NewHistogram([]float64{10})
	for i := 0; i < 4; i++ {
		one.Observe(5)
	}
	if got := one.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Errorf("single-bucket p50 = %v, want 5", got)
	}
	if got := one.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Errorf("single-bucket p100 = %v, want 10", got)
	}

	// Out-of-range q clamps rather than panicking or extrapolating.
	if got := one.Quantile(-3); got != one.Quantile(0) {
		t.Errorf("q=-3 = %v, want the q=0 answer %v", got, one.Quantile(0))
	}
	if got := one.Quantile(7); got != one.Quantile(1) {
		t.Errorf("q=7 = %v, want the q=1 answer %v", got, one.Quantile(1))
	}

	// Every observation in the overflow bucket: all quantiles clamp to the
	// last finite bound — the histogram cannot invent an upper edge.
	over := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		over.Observe(1e6)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := over.Quantile(q); got != 4 {
			t.Errorf("all-overflow q%v = %v, want 4", q, got)
		}
	}
}

func TestHistogramCountLE(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.3, 0.4, 0.9, 5} {
		h.Observe(v)
	}
	if got := h.CountLE(0.5); got != 3 {
		t.Fatalf("CountLE(0.5) = %d, want 3", got)
	}
	if got := h.CountLE(1); got != 4 {
		t.Fatalf("CountLE(1) = %d, want 4", got)
	}
	// A bound below every bucket counts nothing; the overflow observation is
	// only reachable through Count().
	if got := h.CountLE(0.01); got != 0 {
		t.Fatalf("CountLE(0.01) = %d, want 0", got)
	}
	if h.Count()-h.CountLE(1) != 1 {
		t.Fatalf("overflow count = %d, want 1", h.Count()-h.CountLE(1))
	}
}

func TestVecEach(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("req_total", "", "route", "code")
	cv.With("a", "200").Add(3)
	cv.With("b", "500").Add(2)
	var total int64
	var errs int64
	cv.Each(func(labels []string, c *Counter) {
		total += c.Value()
		if labels[1] == "500" {
			errs += c.Value()
		}
	})
	if total != 5 || errs != 2 {
		t.Fatalf("CounterVec.Each saw total=%d errs=%d, want 5/2", total, errs)
	}

	hv := reg.HistogramVec("lat", "", []float64{1}, "route")
	hv.With("a").Observe(0.5)
	hv.With("b").Observe(2)
	var n int64
	hv.Each(func(labels []string, h *Histogram) { n += h.Count() })
	if n != 2 {
		t.Fatalf("HistogramVec.Each saw %d observations, want 2", n)
	}
}

func TestHistogramQuantileSpread(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30, 40})
	// 40 observations, 10 per bucket: p25 at ~10, p75 at ~30.
	for b := 0; b < 4; b++ {
		for i := 0; i < 10; i++ {
			h.Observe(float64(b*10) + 5)
		}
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {0.99, 39.6},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("q%v = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestWritePrometheusGolden pins the exposition format: HELP/TYPE headers,
// sorted families, sorted label sets, cumulative le buckets, _sum/_count.
// This is the byte contract GET /metrics serves and the CI obs-smoke
// job greps.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	reqs := r.CounterVec("requests_total", "Requests by route.", "route", "code")
	reqs.With("/v1/run", "200").Add(3)
	reqs.With("/healthz", "200").Inc()
	r.Gauge("queue_depth", "Jobs waiting.").Set(2)
	h := r.Histogram("latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("uptime_seconds", "Uptime.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP latency_seconds Request latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 2
# HELP requests_total Requests by route.
# TYPE requests_total counter
requests_total{route="/healthz",code="200"} 1
requests_total{route="/v1/run",code="200"} 3
# HELP uptime_seconds Uptime.
# TYPE uptime_seconds gauge
uptime_seconds 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "h.", "k").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{k="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", "h.")
	b := r.Counter("c", "h.")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering at a different kind did not panic")
		}
	}()
	r.Gauge("c", "h.")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing counter:\n%s", rec.Body.String())
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines — series
// creation, observation and scraping all racing — so `go test -race` proves
// the locking. Totals are asserted afterwards: every increment must land.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("hits_total", "Hits.", "worker")
	hist := r.HistogramVec("lat_seconds", "Latency.", []float64{0.01, 0.1, 1}, "worker")
	const (
		goroutines = 8
		perG       = 2000
	)
	workers := []string{"w0", "w1", "w2"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w := workers[(g+i)%len(workers)]
				vec.With(w).Inc()
				hist.With(w).Observe(float64(i%100) / 100)
				if i%500 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b) // scrape racing writes
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range workers {
		total += vec.With(w).Value()
	}
	if want := int64(goroutines * perG); total != want {
		t.Fatalf("lost increments: %d, want %d", total, want)
	}
	var histTotal int64
	for _, w := range workers {
		histTotal += hist.With(w).Count()
	}
	if want := int64(goroutines * perG); histTotal != want {
		t.Fatalf("lost observations: %d, want %d", histTotal, want)
	}
}
