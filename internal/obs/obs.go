// Package obs is the dependency-free observability core of the serving
// stack: atomic counters and gauges, fixed-bucket latency histograms with
// quantile extraction, a labeled registry that renders the Prometheus
// text exposition format (version 0.0.4), and the distributed
// request-tracing layer (SpanContext, W3C traceparent propagation,
// SpanCollector, Chrome trace-event export — see span.go and
// tracecollect.go). electd mounts a registry on GET /metrics and a span
// collector on GET /v1/traces; internal/distrib and elect/client feed
// their own counters into the sweep CLIs' fleet summaries.
//
// Naming note: request tracing here is unrelated to internal/trace, which
// records the communication graph of a clique execution for the paper's
// lower-bound proofs. See the package doc there.
//
// The package deliberately sits at the substrate layer (stdlib only, no
// imports of ours) so every layer — engines included — may depend on it.
// Engine instrumentation (RoundTrace) is strictly observational: it consumes
// no randomness and, when disabled, costs a nil check per event, so the
// deterministic engines' RNG streams, fingerprints and allocation budgets
// are untouched (see ARCHITECTURE.md, "Observability layer").
//
// Exposition output is deterministic — families sorted by name, series
// sorted by label signature — so the format itself is golden-testable.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus contract to hold).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bounds in seconds, spanning
// a cached-run replay (~100µs) to a million-node sweep chunk (~10s).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat accumulates a float64 via CAS on its bit pattern, the
// standard lock-free float accumulator (histogram sums).
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics) plus an implicit +Inf overflow bucket.
// All methods are safe for concurrent use; a scrape racing Observe may see
// a sum slightly ahead of the bucket counts, which Prometheus tolerates.
type Histogram struct {
	bounds []float64 // strictly increasing finite upper bounds
	counts []atomic.Int64
	total  atomic.Int64
	sum    atomicFloat
}

// NewHistogram builds a histogram over the given upper bounds, which must
// be strictly increasing; nil means DefBuckets. The registry calls this —
// construct directly only in tests.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %v", bounds[i]))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN and negative observations are dropped:
// either would silently corrupt the sum (NaN poisons it outright, negatives
// skew it below the bucket counts) and with it the golden exposition, and
// neither is a meaningful latency.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.total.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// inside the bucket holding the target rank — the same estimate a
// Prometheus histogram_quantile() yields. Observations beyond the largest
// finite bound are reported as that bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i, b := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(b-lower)
		}
		cum += c
		lower = b
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// CountLE returns the number of observations in buckets whose upper bound
// is <= bound — a point read of the histogram's CDF at a bucket boundary.
// The SLO tracker uses it to count requests inside a latency objective
// (pick an objective that IS a bucket bound, or the nearest lower bound
// answers).
func (h *Histogram) CountLE(bound float64) int64 {
	var cum int64
	for i, b := range h.bounds {
		if b > bound {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// metricKind discriminates the exposition TYPE of a family.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	}
	return "histogram"
}

// series is one labeled instance of a family.
type series struct {
	labels []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric and all its label instances.
type family struct {
	name, help string
	kind       metricKind
	keys       []string
	buckets    []float64      // histograms only
	fn         func() float64 // callback families: value read at scrape time

	mu     sync.Mutex
	series map[string]*series
}

// sigSep joins label values into a series signature; 0x00 cannot appear in
// a sane label value, and the signature sort order matches the rendered
// label order because values map positionally onto the fixed key list.
const sigSep = "\x00"

func (f *family) with(values []string) *series {
	if len(values) != len(f.keys) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", f.name, len(f.keys), len(values)))
	}
	sig := strings.Join(values, sigSep)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = NewHistogram(f.buckets)
		}
		f.series[sig] = s
	}
	return s
}

// Registry is a set of named metric families. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use.
// Registering the same name twice returns the existing family (the kind and
// label keys must match, or the second registration panics — a programming
// error, like redeclaring a variable at a different type).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind metricKind, keys []string, buckets []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.keys) != len(keys) {
			panic(fmt.Sprintf("obs: %s re-registered as a different metric", name))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("obs: %s re-registered with different label keys", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		keys:    append([]string(nil), keys...),
		buckets: buckets,
		fn:      fn,
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil, nil).with(nil).c
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil, nil).with(nil).g
}

// Histogram registers (or finds) an unlabeled histogram; nil buckets means
// DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets, nil).with(nil).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for mirroring counters owned elsewhere (e.g. the result cache's
// hit/miss totals) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.family(name, help, kindCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time
// (queue depths, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.family(name, help, kindGauge, nil, nil, fn)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, keys, nil, nil)}
}

// With returns the counter for one label-value combination, creating it on
// first use. The number of values must match the declared keys.
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).c }

// Each calls fn for every series of the family in sorted label-signature
// order (the exposition order), outside the family lock. The fleetz
// federation walks the request counters with it.
func (v *CounterVec) Each(fn func(labels []string, c *Counter)) {
	for _, s := range v.f.snapshot() {
		fn(s.labels, s.c)
	}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, keys, nil, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).g }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labeled histogram family; nil buckets
// means DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, keys, buckets, nil)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).h }

// Each calls fn for every series of the family in sorted label-signature
// order, outside the family lock.
func (v *HistogramVec) Each(fn func(labels []string, h *Histogram)) {
	for _, s := range v.f.snapshot() {
		fn(s.labels, s.h)
	}
}

// snapshot copies the family's series in sorted signature order, for
// iteration outside the lock.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*series, len(sigs))
	for i, sig := range sigs {
		out[i] = f.series[sig]
	}
	f.mu.Unlock()
	return out
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4). Output is deterministic: families sorted by name, series
// sorted by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	snap := make([]*series, len(sigs))
	for i, sig := range sigs {
		snap[i] = f.series[sig]
	}
	f.mu.Unlock()
	for _, s := range snap {
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, renderLabels(f.keys, s.labels, "", ""), s.c.Value())
		case kindGauge:
			fmt.Fprintf(b, "%s%s %d\n", f.name, renderLabels(f.keys, s.labels, "", ""), s.g.Value())
		case kindHistogram:
			h := s.h
			var cum int64
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					renderLabels(f.keys, s.labels, "le", formatFloat(bound)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				renderLabels(f.keys, s.labels, "le", "+Inf"), cum)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				renderLabels(f.keys, s.labels, "", ""), formatFloat(h.Sum()))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				renderLabels(f.keys, s.labels, "", ""), h.Count())
		}
	}
}

// renderLabels renders {k1="v1",k2="v2"}, optionally with one extra pair
// appended (the histogram "le" bound); no labels renders as the empty
// string.
func renderLabels(keys, values []string, extraKey, extraValue string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes the three characters the exposition format requires
// escaping inside label values.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in the text exposition format — the body of
// electd's GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
