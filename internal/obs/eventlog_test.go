package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEventLogBasics(t *testing.T) {
	l := NewEventLog(64, "n1")
	l.Emit("campaign.won", "epoch", "3")
	l.Emit("lease.grant", "epoch", "3", "holder", "n1")
	l.Emit("fence.reject")

	if got := l.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	events := l.Events(0, 0)
	if len(events) != 3 {
		t.Fatalf("Events = %d entries, want 3", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("events not seq-ascending: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	if events[0].Kind != "campaign.won" || events[0].Fields["epoch"] != "3" {
		t.Fatalf("first event = %+v", events[0])
	}
	if events[0].Node != "n1" {
		t.Fatalf("node = %q, want n1", events[0].Node)
	}
	if events[2].Fields != nil {
		t.Fatalf("fieldless event has fields %v", events[2].Fields)
	}
	if events[0].TS <= 0 || events[0].TS > time.Now().UnixMicro() {
		t.Fatalf("implausible timestamp %d", events[0].TS)
	}

	// ?since= paging: only events after the given sequence.
	rest := l.Events(events[0].Seq, 0)
	if len(rest) != 2 || rest[0].Kind != "lease.grant" {
		t.Fatalf("Events(since) = %+v, want the 2 later events", rest)
	}
	// limit keeps the newest.
	last := l.Events(0, 1)
	if len(last) != 1 || last[0].Kind != "fence.reject" {
		t.Fatalf("Events(0, 1) = %+v, want the newest event", last)
	}
}

func TestEventLogBounded(t *testing.T) {
	l := NewEventLog(32, "n1")
	for i := 0; i < 500; i++ {
		l.Emit("tick")
	}
	if got := l.Len(); got > 32 {
		t.Fatalf("Len = %d after 500 emits into capacity 32", got)
	}
	events := l.Events(0, 0)
	// The newest event always survives.
	if events[len(events)-1].Seq != 500 {
		t.Fatalf("newest surviving seq = %d, want 500", events[len(events)-1].Seq)
	}
}

func TestNilEventLog(t *testing.T) {
	var l *EventLog
	l.Emit("anything", "k", "v") // must not panic
	if l.Len() != 0 || l.Events(0, 0) != nil || l.Node() != "" {
		t.Fatal("nil log not inert")
	}
	ch, stop := l.Subscribe()
	if ch != nil {
		t.Fatal("nil log returned a live subscription")
	}
	stop()
}

// TestNilEventLogEmitAllocs pins the disabled path's zero-allocation claim:
// a daemon running without an event journal pays one nil check per Emit and
// nothing else — the same discipline the span collector and RoundTrace hold
// (and TestRoundLoopAllocBudget enforces engine-side).
func TestNilEventLogEmitAllocs(t *testing.T) {
	var l *EventLog
	allocs := testing.AllocsPerRun(1000, func() {
		l.Emit("campaign.won", "epoch", "3", "live", "3")
	})
	if allocs != 0 {
		t.Fatalf("nil EventLog.Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestEventLogSubscribe(t *testing.T) {
	l := NewEventLog(64, "n1")
	ch, stop := l.Subscribe()
	defer stop()
	l.Emit("worker.down", "url", "http://w1")
	select {
	case e := <-ch:
		if e.Kind != "worker.down" || e.Fields["url"] != "http://w1" {
			t.Fatalf("subscribed event = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("subscription never delivered")
	}
	stop()
	stop() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after stop")
	}
}

// TestEventLogConcurrent is the -race hammer: emitters, readers and a
// churning subscriber all at once.
func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(128, "n1")
	var wg sync.WaitGroup
	stopCh := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Emit("tick", "g", "x")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopCh:
				return
			default:
				l.Events(0, 10)
				l.Len()
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			ch, stop := l.Subscribe()
			select {
			case <-ch:
			default:
			}
			stop()
		}
	}()
	// Wait for emitters and the subscriber churn, then release the reader.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(10 * time.Millisecond)
	close(stopCh)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent hammer wedged")
	}
	if l.Len() == 0 {
		t.Fatal("no events survived the hammer")
	}
}
