package obs

import (
	"strings"
	"sync"
	"testing"
)

// mkSpan builds a deterministic span for collector tests: trace id from
// tr (repeated byte), span id from id.
func mkSpan(tr, id byte, name string) Span {
	var s Span
	for i := range s.Trace {
		s.Trace[i] = tr
	}
	s.ID[7] = id
	s.Name = name
	s.Service = "test"
	return s
}

func TestSpanCollectorBasics(t *testing.T) {
	c := NewSpanCollector(64)
	c.Add(mkSpan(1, 1, "a"))
	c.Add(mkSpan(2, 1, "b"))
	c.Add(mkSpan(1, 2, "c"))
	if got := c.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	tr := mkSpan(1, 0, "").Trace
	spans := c.Trace(tr)
	if len(spans) != 2 || spans[0].Name != "a" || spans[1].Name != "c" {
		t.Fatalf("Trace returned %+v", spans)
	}
	if got := c.Trace(mkSpan(9, 0, "").Trace); len(got) != 0 {
		t.Fatalf("unknown trace returned %+v", got)
	}
	// Newest-first orders: span "c" was added last, so trace 1 leads.
	ids := c.TraceIDs(10)
	if len(ids) != 2 || ids[0] != tr {
		t.Fatalf("TraceIDs = %v", ids)
	}
	if all := c.Spans(); len(all) != 3 || all[0].Name != "c" {
		t.Fatalf("Spans newest-first broken: %+v", all)
	}
	if got := c.TraceIDs(1); len(got) != 1 {
		t.Fatalf("limit ignored: %v", got)
	}
}

// TestSpanCollectorBounded fills one shard far past its ring capacity and
// checks that memory stays bounded and the newest spans survive.
func TestSpanCollectorBounded(t *testing.T) {
	c := NewSpanCollector(spanShards) // one slot per shard
	tr := mkSpan(3, 0, "").Trace
	for i := 0; i < 100; i++ {
		s := mkSpan(3, byte(i), "s")
		s.Start = int64(i)
		c.Add(s)
	}
	got := c.Trace(tr)
	if len(got) != 1 {
		t.Fatalf("ring held %d spans, want 1", len(got))
	}
	if got[0].Start != 99 {
		t.Fatalf("ring kept span %d, want the newest (99)", got[0].Start)
	}
}

// TestNilSpanCollector pins the disabled-path contract: every method of a
// nil collector is a safe no-op, so call sites guard with nothing but the
// nil receiver.
func TestNilSpanCollector(t *testing.T) {
	var c *SpanCollector
	c.Add(mkSpan(1, 1, "x"))
	c.AddAll([]Span{mkSpan(1, 2, "y")})
	if c.Len() != 0 || c.Spans() != nil || c.Trace(TraceID{}) != nil || c.TraceIDs(5) != nil {
		t.Fatal("nil collector not inert")
	}
}

// TestNilSpanCollectorAddAllocs pins "a disabled tracing layer costs a nil
// check": emitting through a nil collector must not allocate at all (the
// serving-stack counterpart of the engines' nil RoundTrace guard; the
// simsync allocation-budget test holds the same line inside the round
// loop).
func TestNilSpanCollectorAddAllocs(t *testing.T) {
	var c *SpanCollector
	s := mkSpan(4, 4, "noop")
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(s)
		c.AddAll(nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-collector Add allocated %.1f times per op, want 0", allocs)
	}
}

// TestSpanCollectorConcurrent is the -race hammer: writers on every shard
// racing readers of every accessor.
func TestSpanCollectorConcurrent(t *testing.T) {
	c := NewSpanCollector(256)
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Add(mkSpan(byte(w), byte(i), "s"))
				if i%16 == 0 {
					c.AddAll([]Span{mkSpan(byte(w), byte(i), "batch")})
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = c.Spans()
				_ = c.Trace(mkSpan(byte(r), 0, "").Trace)
				_ = c.TraceIDs(10)
				_ = c.Len()
			}
		}(r)
	}
	wg.Wait()
	if c.Len() == 0 {
		t.Fatal("hammer left collector empty")
	}
}

// TestWriteChromeTraceGolden pins the export byte for byte: fixed spans in
// scrambled input order must render the exact trace-event JSON, with
// services mapped to pids in sorted order, spans sorted by start time, and
// overlap-free lane assignment.
func TestWriteChromeTraceGolden(t *testing.T) {
	tr := mkSpan(7, 0, "").Trace
	root := Span{Trace: tr, ID: SpanID{0, 0, 0, 0, 0, 0, 0, 1},
		Name: "sweep", Service: "sweep", Start: 1000, Dur: 500}
	disp := Span{Trace: tr, ID: SpanID{0, 0, 0, 0, 0, 0, 0, 2}, Parent: root.ID,
		Name: "chunk.dispatch", Service: "sweep", Start: 1100, Dur: 300,
		Attrs: map[string]string{"worker": "http://w1", "cells": "8"}}
	exec := Span{Trace: tr, ID: SpanID{0, 0, 0, 0, 0, 0, 0, 3}, Parent: disp.ID,
		Name: "job.exec", Service: "electd", Start: 1150, Dur: 200}
	// Scrambled input order; the exporter must sort.
	var b strings.Builder
	if err := WriteChromeTrace(&b, []Span{exec, disp, root}); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"electd"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"sweep"}},` +
		`{"name":"sweep","cat":"sweep","ph":"X","ts":1000,"dur":500,"pid":2,"tid":1,` +
		`"args":{"span_id":"0000000000000001","trace_id":"07070707070707070707070707070707"}},` +
		`{"name":"chunk.dispatch","cat":"sweep","ph":"X","ts":1100,"dur":300,"pid":2,"tid":2,` +
		`"args":{"cells":"8","parent_id":"0000000000000001","span_id":"0000000000000002",` +
		`"trace_id":"07070707070707070707070707070707","worker":"http://w1"}},` +
		`{"name":"job.exec","cat":"electd","ph":"X","ts":1150,"dur":200,"pid":1,"tid":1,` +
		`"args":{"parent_id":"0000000000000002","span_id":"0000000000000003",` +
		`"trace_id":"07070707070707070707070707070707"}}]}` + "\n"
	if b.String() != want {
		t.Fatalf("chrome export drifted:\n got: %s\nwant: %s", b.String(), want)
	}
}

// TestWaterfall smoke-checks the ASCII renderer: every span of the subtree
// appears, indented, with a bar inside the window.
func TestWaterfall(t *testing.T) {
	tr := mkSpan(8, 0, "").Trace
	root := Span{Trace: tr, ID: SpanID{0, 0, 0, 0, 0, 0, 0, 1},
		Name: "chunk.dispatch", Service: "sweep", Start: 0, Dur: 1000}
	child := Span{Trace: tr, ID: SpanID{0, 0, 0, 0, 0, 0, 0, 2}, Parent: root.ID,
		Name: "job.exec", Service: "electd", Start: 500, Dur: 400,
		Attrs: map[string]string{"job": "j1"}}
	var b strings.Builder
	Waterfall(&b, "# ", root, []Span{root, child}, 20)
	out := b.String()
	for _, want := range []string{"chunk.dispatch", "  electd job.exec", "job=j1", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "# ") {
			t.Fatalf("line %q missing prefix", line)
		}
	}
}
