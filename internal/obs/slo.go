package obs

// SLO burn-rate tracking: a rolling window of cumulative request/bad-event
// samples over the metrics the registry already holds, scored into a
// three-level health verdict. The tracker is deliberately passive — it owns
// no goroutine or timer; each Status call (a /metrics scrape or a
// /v1/fleetz probe) advances the sample ring lazily, so an idle daemon
// pays nothing.

import (
	"sync"
	"time"
)

// Health verdicts, ordered from best to worst.
const (
	HealthHealthy  = "healthy"
	HealthDegraded = "degraded"
	HealthCritical = "critical"
)

// VerdictRank orders verdicts for worst-of merging: healthy < degraded <
// critical; unknown strings rank worst of all (a node that cannot report
// its health is not healthy).
func VerdictRank(v string) int {
	switch v {
	case HealthHealthy:
		return 0
	case HealthDegraded:
		return 1
	case HealthCritical:
		return 2
	}
	return 3
}

// WorseVerdict returns the worse of two verdicts — the fleet verdict is the
// worst node verdict.
func WorseVerdict(a, b string) string {
	if VerdictRank(b) > VerdictRank(a) {
		return b
	}
	return a
}

// SLOSample is one cumulative reading of the tracked totals: every request
// served, the subset answered 5xx, and the subset slower than the latency
// objective. The source closure reads them from the live registry
// (CounterVec.Each / Histogram.CountLE), so the tracker double-counts
// nothing.
type SLOSample struct {
	Requests int64
	Errors   int64
	Slow     int64
}

// Burn-rate thresholds: a burn rate is the bad-event ratio over the window
// divided by the error budget, so burn 1.0 consumes the budget exactly as
// fast as allowed. Sustained burn >= SLOBurnDegraded is degraded; burn >=
// SLOBurnCritical (the classic fast-burn page threshold) is critical.
const (
	SLOBurnDegraded = 1.0
	SLOBurnCritical = 10.0
)

// SLOStatus is one verdict with its evidence, embedded per node in
// /v1/fleetz and exported as the electd_slo_* metrics.
type SLOStatus struct {
	// Verdict is healthy, degraded or critical.
	Verdict string `json:"verdict"`
	// BurnRate is BadRatio divided by the error budget (0 on zero traffic).
	BurnRate float64 `json:"burn_rate"`
	// BadRatio is the fraction of windowed requests that were errors or
	// slower than the objective.
	BadRatio float64 `json:"bad_ratio"`
	// Requests is the number of requests observed inside the window.
	Requests int64 `json:"requests"`
	// WindowSeconds is the actual span of the window the ratio covers (less
	// than the configured window early in a daemon's life).
	WindowSeconds float64 `json:"window_seconds"`
}

// SLOTracker scores a daemon's health from a rolling window of samples.
// All methods are safe for concurrent use; the zero value is not usable,
// construct with NewSLOTracker.
type SLOTracker struct {
	source func() SLOSample
	budget float64
	window time.Duration
	step   time.Duration
	now    func() time.Time

	mu     sync.Mutex
	points []sloPoint // oldest first, all within window of the newest
}

type sloPoint struct {
	t time.Time
	s SLOSample
}

// SLO defaults: up to 1% of requests may be bad (5xx or slower than the
// objective), judged over a 5-minute window sampled every 10 seconds.
const (
	DefaultSLOBudget = 0.01
	DefaultSLOWindow = 5 * time.Minute
	defaultSLOStep   = 10 * time.Second
)

// NewSLOTracker builds a tracker over source, which must return cumulative
// (never decreasing) totals. budget <= 0 means DefaultSLOBudget; window
// <= 0 means DefaultSLOWindow.
func NewSLOTracker(source func() SLOSample, budget float64, window time.Duration) *SLOTracker {
	if budget <= 0 {
		budget = DefaultSLOBudget
	}
	if window <= 0 {
		window = DefaultSLOWindow
	}
	step := window / 30
	if step > defaultSLOStep {
		step = defaultSLOStep
	}
	if step <= 0 {
		step = time.Second
	}
	return &SLOTracker{
		source: source,
		budget: budget,
		window: window,
		step:   step,
		now:    time.Now,
	}
}

// setClock pins the tracker's clock (tests).
func (t *SLOTracker) setClock(now func() time.Time) { t.now = now }

// Status samples the source, advances the window ring, and scores the
// verdict. Zero traffic in the window is healthy — an idle daemon is not a
// broken one.
func (t *SLOTracker) Status() SLOStatus {
	now := t.now()
	cur := sloPoint{t: now, s: t.source()}

	t.mu.Lock()
	defer t.mu.Unlock()
	if n := len(t.points); n == 0 || now.Sub(t.points[n-1].t) >= t.step {
		t.points = append(t.points, cur)
	}
	// Drop points that have fallen out of the window, but always keep one
	// baseline: the delta is measured against the oldest retained point.
	for len(t.points) > 1 && now.Sub(t.points[1].t) >= t.window {
		t.points = t.points[1:]
	}
	base := t.points[0]

	st := SLOStatus{
		Verdict:       HealthHealthy,
		WindowSeconds: now.Sub(base.t).Seconds(),
	}
	reqs := cur.s.Requests - base.s.Requests
	bad := (cur.s.Errors - base.s.Errors) + (cur.s.Slow - base.s.Slow)
	if reqs <= 0 || bad < 0 {
		return st
	}
	st.Requests = reqs
	st.BadRatio = float64(bad) / float64(reqs)
	st.BurnRate = st.BadRatio / t.budget
	switch {
	case st.BurnRate >= SLOBurnCritical:
		st.Verdict = HealthCritical
	case st.BurnRate >= SLOBurnDegraded:
		st.Verdict = HealthDegraded
	}
	return st
}
