package obs

import "testing"

func TestRoundTraceSync(t *testing.T) {
	rt := NewRoundTrace(4, 1)
	rt.Woke(1)
	rt.Woke(1)
	rt.Send(1, 0, 7, 3)
	rt.Send(1, 0, 7, 3) // same node again: Active counts it once
	rt.Send(1, 1, 9, 3)
	rt.Deliver(1, 3)
	rt.Decided(2)
	rt.Send(2, 0, 7, 3) // node 0 active again in a new round

	stats := rt.Stats()
	if len(stats) != 2 {
		t.Fatalf("len(stats) = %d, want 2", len(stats))
	}
	r1 := stats[0]
	if r1.Round != 1 || r1.Messages != 3 || r1.Words != 9 || r1.Active != 2 ||
		r1.Woke != 2 || r1.Deliveries != 3 || r1.Decided != 0 {
		t.Errorf("round 1 = %+v", r1)
	}
	if r1.Kinds[7] != 2 || r1.Kinds[9] != 1 {
		t.Errorf("round 1 kinds = %v", r1.Kinds)
	}
	r2 := stats[1]
	if r2.Round != 2 || r2.Messages != 1 || r2.Active != 1 || r2.Decided != 1 {
		t.Errorf("round 2 = %+v", r2)
	}
}

// Async windows start at 0 and may skip; gaps are zero-filled so the
// timeline is contiguous.
func TestRoundTraceWindowGaps(t *testing.T) {
	rt := NewRoundTrace(2, 0)
	rt.Woke(0)
	rt.Send(0, 0, 1, 3)
	rt.Send(3, 1, 1, 3) // windows 1 and 2 saw nothing
	stats := rt.Stats()
	if len(stats) != 4 {
		t.Fatalf("len(stats) = %d, want 4", len(stats))
	}
	for i, s := range stats {
		if s.Round != i {
			t.Errorf("stats[%d].Round = %d", i, s.Round)
		}
	}
	if stats[1].Messages != 0 || stats[2].Messages != 0 {
		t.Errorf("gap windows not empty: %+v", stats[1:3])
	}
	if stats[3].Messages != 1 || stats[3].Active != 1 {
		t.Errorf("window 3 = %+v", stats[3])
	}
}

func TestRoundTraceEmpty(t *testing.T) {
	rt := NewRoundTrace(8, 1)
	if got := rt.Stats(); len(got) != 0 {
		t.Fatalf("fresh collector has %d stats", len(got))
	}
}
