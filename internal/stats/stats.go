// Package stats provides the measurement toolkit for the experiment harness:
// summary statistics over repeated seeded runs, log-log least-squares
// exponent fitting (used to verify the message-complexity exponents claimed
// in Table 1 of the paper), and plain-text table rendering for
// cmd/experiments and EXPERIMENTS.md.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual summary statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
	P95    float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0..100) of a sorted sample using
// linear interpolation between closest ranks. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// PowerFit is the result of fitting y = C * x^Alpha by least squares on
// (log x, log y).
type PowerFit struct {
	Alpha float64 // fitted exponent
	LogC  float64 // fitted log-constant
	R2    float64 // coefficient of determination in log space
}

// C returns the fitted multiplicative constant.
func (f PowerFit) C() float64 { return math.Exp(f.LogC) }

// Eval returns the fitted value at x.
func (f PowerFit) Eval(x float64) float64 { return f.C() * math.Pow(x, f.Alpha) }

func (f PowerFit) String() string {
	return fmt.Sprintf("y ≈ %.3g·x^%.3f (R²=%.4f)", f.C(), f.Alpha, f.R2)
}

// FitPower fits y = C*x^alpha over the positive points of (xs, ys). It
// returns an error if fewer than two usable points remain or all xs
// coincide. This is how the harness recovers the message-complexity
// exponents (e.g. 1+2/(l+1) for Theorem 3.10, 3/2 for Theorem 4.1) from
// measured runs.
func FitPower(xs, ys []float64) (PowerFit, error) {
	if len(xs) != len(ys) {
		return PowerFit{}, fmt.Errorf("stats: FitPower length mismatch %d vs %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return PowerFit{}, fmt.Errorf("stats: FitPower needs >=2 positive points, have %d", len(lx))
	}
	slope, intercept, r2, err := linreg(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{Alpha: slope, LogC: intercept, R2: r2}, nil
}

// linreg is ordinary least squares of y on x, returning slope, intercept and
// R².
func linreg(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0, fmt.Errorf("stats: all x values identical")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		r2 = 1
	} else {
		r2 = sxy * sxy / (sxx * syy)
	}
	return slope, intercept, r2, nil
}

// Table renders rows of data as an aligned plain-text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are rendered with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored markdown (used to generate
// EXPERIMENTS.md sections).
func (t *Table) Markdown() string {
	var b strings.Builder
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ",") + "\n")
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ",") + "\n")
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
