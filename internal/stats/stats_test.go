package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"cliquelect/internal/xrand"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("got %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("got %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.P95 != 7 {
		t.Fatalf("got %+v", s)
	}
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(xs, 0) != 10 || Percentile(xs, 100) != 40 {
		t.Fatal("endpoint percentiles wrong")
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("P50 = %v, want 25", got)
	}
}

func TestPercentileMonotone(t *testing.T) {
	prop := func(seed uint64, n uint8) bool {
		rng := xrand.New(seed)
		xs := make([]float64, int(n%50)+1)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		sort.Float64s(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitPowerRecoversExponent(t *testing.T) {
	cases := []struct {
		c, alpha float64
	}{
		{1, 1},
		{2, 1.5},
		{0.5, 2},
		{10, 1.25},
		{3, 0.5},
	}
	for _, cse := range cases {
		var xs, ys []float64
		for _, x := range []float64{64, 128, 256, 512, 1024, 2048} {
			xs = append(xs, x)
			ys = append(ys, cse.c*math.Pow(x, cse.alpha))
		}
		fit, err := FitPower(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-cse.alpha) > 1e-9 {
			t.Errorf("alpha = %v, want %v", fit.Alpha, cse.alpha)
		}
		if math.Abs(fit.C()-cse.c) > 1e-6*cse.c {
			t.Errorf("C = %v, want %v", fit.C(), cse.c)
		}
		if fit.R2 < 0.999999 {
			t.Errorf("R2 = %v", fit.R2)
		}
	}
}

func TestFitPowerNoisy(t *testing.T) {
	rng := xrand.New(99)
	var xs, ys []float64
	for _, x := range []float64{64, 128, 256, 512, 1024, 2048, 4096} {
		noise := 1 + 0.05*(rng.Float64()-0.5)
		xs = append(xs, x)
		ys = append(ys, 2*math.Pow(x, 1.5)*noise)
	}
	fit, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-1.5) > 0.05 {
		t.Fatalf("noisy alpha = %v", fit.Alpha)
	}
}

func TestFitPowerErrors(t *testing.T) {
	if _, err := FitPower([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitPower([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Fatal("degenerate x accepted")
	}
	// Non-positive points are dropped, not fatal, as long as 2 remain.
	if _, err := FitPower([]float64{-1, 2, 4}, []float64{1, 2, 4}); err != nil {
		t.Fatalf("dropping nonpositive points failed: %v", err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "msgs", "ratio")
	tb.AddRow(256, 12345, 1.2345678)
	tb.AddRow(512, 67890, 0.5)
	s := tb.String()
	if !strings.Contains(s, "n") || !strings.Contains(s, "12345") {
		t.Fatalf("table output missing data:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
	md := tb.Markdown()
	if !strings.HasPrefix(md, "| n | msgs | ratio |") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "n,msgs,ratio\n256,") {
		t.Fatalf("csv wrong:\n%s", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(3) != "3" {
		t.Fatalf("got %q", trimFloat(3))
	}
	if trimFloat(3.14159) != "3.142" {
		t.Fatalf("got %q", trimFloat(3.14159))
	}
}
