// Package livenet runs asynchronous clique protocols on a real concurrent
// substrate: one goroutine per node, an unbounded mailbox per node, and a
// shared port mapping guarded by a mutex. It drives the same
// simasync.Protocol implementations as the deterministic simulator, so every
// algorithm in internal/core can be executed under genuine goroutine
// interleavings — the integration tests use this to check that correctness
// does not depend on the simulator's scheduling.
//
// Unlike simasync, livenet is intentionally nondeterministic and does not
// measure time; it reports message counts and decisions. Message delays are
// whatever the Go scheduler produces (plus per-link FIFO, which mailbox
// ordering provides for free since each sender enqueues directly).
//
// Termination uses quiescence counting: every enqueued item increments a
// WaitGroup that is decremented only after the receiving node has fully
// processed the item (including enqueuing any messages it triggered, which
// happen-before the decrement) — when the count reaches zero, no work
// remains anywhere.
package livenet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cliquelect/internal/ids"
	"cliquelect/internal/portmap"
	"cliquelect/internal/proto"
	"cliquelect/internal/simasync"
	"cliquelect/internal/xrand"
)

// Config describes one live execution.
type Config struct {
	// N is the number of nodes.
	N int
	// IDs assigns an ID per node; required, length N.
	IDs ids.Assignment
	// Ports is the port mapping (shared; livenet serializes access). nil
	// defaults to a SharedPerm mapping seeded from Seed.
	Ports portmap.Map
	// Wake lists the externally woken nodes; required, nonempty.
	Wake []int
	// Seed drives node RNGs and the default port map.
	Seed uint64
	// MaxMessages aborts runaway executions; 0 defaults to 64*N*N + 1<<16.
	MaxMessages int64
}

// Result summarizes one live execution.
type Result struct {
	// Messages is the number of messages sent.
	Messages int64
	// Decisions holds each node's final output.
	Decisions []proto.Decision
	// Awake[u] reports whether node u was ever activated.
	Awake []bool
	// Truncated reports that MaxMessages was reached and sends were dropped.
	Truncated bool
}

// Leaders returns the indices of nodes that decided Leader.
func (r *Result) Leaders() []int {
	var out []int
	for u, d := range r.Decisions {
		if d == proto.Leader {
			out = append(out, u)
		}
	}
	return out
}

// Validate checks implicit leader election over the live run.
func (r *Result) Validate() error {
	if r.Truncated {
		return fmt.Errorf("livenet: run truncated at %d messages", r.Messages)
	}
	if got := len(r.Leaders()); got != 1 {
		return fmt.Errorf("livenet: %d leaders elected, want 1", got)
	}
	for u, d := range r.Decisions {
		if r.Awake[u] && d == proto.Undecided {
			return fmt.Errorf("livenet: awake node %d undecided", u)
		}
	}
	return nil
}

type itemKind uint8

const (
	itemWake itemKind = iota + 1
	itemDeliver
	itemStop
)

type item struct {
	kind itemKind
	d    proto.Delivery
}

// mailbox is an unbounded FIFO queue; unbounded so that cyclic send patterns
// can never deadlock the node goroutines.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []item
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(it item) {
	mb.mu.Lock()
	mb.items = append(mb.items, it)
	mb.mu.Unlock()
	mb.cond.Signal()
}

func (mb *mailbox) take() item {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.items) == 0 {
		mb.cond.Wait()
	}
	it := mb.items[0]
	mb.items = mb.items[1:]
	return it
}

// lockedMap serializes access to a port mapping (LazyRandom materializes
// lazily and is not otherwise safe for concurrent use).
type lockedMap struct {
	mu sync.Mutex
	m  portmap.Map
}

func (lm *lockedMap) dest(u, p int) (int, int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.m.Dest(u, p)
}

// Run executes the configured protocol on the live runtime until
// quiescence.
func Run(cfg Config, factory simasync.Factory) (*Result, error) {
	n := cfg.N
	if n < 1 {
		return nil, fmt.Errorf("livenet: N = %d", n)
	}
	if len(cfg.IDs) != n {
		return nil, fmt.Errorf("livenet: %d IDs for %d nodes", len(cfg.IDs), n)
	}
	if len(cfg.Wake) == 0 {
		return nil, fmt.Errorf("livenet: empty wake set")
	}
	master := xrand.New(cfg.Seed)
	pm := cfg.Ports
	if pm == nil && n >= 2 {
		pm = portmap.NewSharedPerm(n, master.Split())
	}
	lm := &lockedMap{m: pm}
	maxMessages := cfg.MaxMessages
	if maxMessages == 0 {
		maxMessages = 64*int64(n)*int64(n) + 1<<16
	}

	nodes := make([]simasync.Protocol, n)
	envs := make([]proto.Env, n)
	boxes := make([]*mailbox, n)
	for u := 0; u < n; u++ {
		nodes[u] = factory(u)
		envs[u] = proto.Env{ID: int64(cfg.IDs[u]), N: n, RNG: master.Split()}
		boxes[u] = newMailbox()
	}

	var (
		pending   sync.WaitGroup // in-flight items (messages + wakes)
		workers   sync.WaitGroup // node goroutines
		msgCount  atomic.Int64
		truncated atomic.Bool
	)
	awake := make([]bool, n) // owned by each node's goroutine; read after join

	// dispatch resolves and enqueues a node's outgoing messages.
	dispatch := func(u int, outs []proto.Send) {
		for _, s := range outs {
			if s.Port < 0 || s.Port >= n-1 {
				continue // livenet drops invalid sends; Strict lives in simsync
			}
			if msgCount.Add(1) > maxMessages {
				truncated.Store(true)
				continue
			}
			v, q := lm.dest(u, s.Port)
			pending.Add(1)
			boxes[v].put(item{kind: itemDeliver, d: proto.Delivery{Port: q, Msg: s.Msg}})
		}
	}

	for u := 0; u < n; u++ {
		u := u
		workers.Add(1)
		go func() {
			defer workers.Done()
			for {
				it := boxes[u].take()
				switch it.kind {
				case itemStop:
					return
				case itemWake:
					if !awake[u] {
						awake[u] = true
						dispatch(u, nodes[u].Wake(envs[u]))
					}
					pending.Done()
				case itemDeliver:
					if !awake[u] {
						awake[u] = true
						dispatch(u, nodes[u].Wake(envs[u]))
					}
					dispatch(u, nodes[u].Receive(it.d))
					pending.Done()
				}
			}
		}()
	}

	for _, u := range cfg.Wake {
		if u < 0 || u >= n {
			return nil, fmt.Errorf("livenet: wake of invalid node %d", u)
		}
		pending.Add(1)
		boxes[u].put(item{kind: itemWake})
	}
	pending.Wait()
	for u := 0; u < n; u++ {
		boxes[u].put(item{kind: itemStop})
	}
	workers.Wait()

	res := &Result{
		Messages:  msgCount.Load(),
		Decisions: make([]proto.Decision, n),
		Awake:     awake,
		Truncated: truncated.Load(),
	}
	for u := 0; u < n; u++ {
		res.Decisions[u] = nodes[u].Decision()
	}
	if res.Truncated {
		res.Messages = maxMessages
	}
	return res, nil
}
