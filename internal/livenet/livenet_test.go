package livenet

import (
	"testing"

	"cliquelect/internal/core"
	"cliquelect/internal/ids"
	"cliquelect/internal/proto"
	"cliquelect/internal/simasync"
	"cliquelect/internal/xrand"
)

func TestLiveAsyncTradeoff(t *testing.T) {
	// Algorithm 2 must elect a unique leader under genuine goroutine
	// interleavings, not only under the deterministic simulator.
	const n = 96
	fails := 0
	const trials = 15
	for seed := uint64(0); seed < trials; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+1))
		res, err := Run(Config{
			N: n, IDs: assign, Wake: []int{0, 7}, Seed: seed,
		}, core.NewAsyncTradeoff(2))
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate() != nil {
			fails++
		}
	}
	if fails > 2 {
		t.Fatalf("%d/%d live runs failed", fails, trials)
	}
}

func TestLiveAsyncAfekGafni(t *testing.T) {
	// The deterministic levels algorithm must elect exactly one leader on
	// every live run — no failure budget at all.
	for _, n := range []int{2, 3, 16, 64} {
		for seed := uint64(0); seed < 5; seed++ {
			assign := ids.Random(ids.LogUniverse(max(2, n)), n, xrand.New(seed+uint64(n)))
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			res, err := Run(Config{N: n, IDs: assign, Wake: all, Seed: seed},
				core.NewAsyncAfekGafni())
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestLiveWakesEveryone(t *testing.T) {
	const n = 64
	assign := ids.Random(ids.LogUniverse(n), n, xrand.New(5))
	res, err := Run(Config{N: n, IDs: assign, Wake: []int{3}, Seed: 6},
		core.NewAsyncTradeoff(2))
	if err != nil {
		t.Fatal(err)
	}
	for u, a := range res.Awake {
		if !a {
			t.Fatalf("node %d never woke", u)
		}
	}
}

// chatter floods forever to exercise the truncation guard.
type chatter struct{ env proto.Env }

func (c *chatter) Wake(env proto.Env) []proto.Send {
	c.env = env
	return []proto.Send{{Port: 0, Msg: proto.Message{Kind: 1}}}
}

func (c *chatter) Receive(d proto.Delivery) []proto.Send {
	return []proto.Send{{Port: d.Port, Msg: proto.Message{Kind: 1}}}
}

func (c *chatter) Decision() proto.Decision { return proto.Undecided }

func TestLiveTruncation(t *testing.T) {
	res, err := Run(Config{
		N: 2, IDs: ids.Assignment{1, 2}, Wake: []int{0}, MaxMessages: 50,
	}, func(int) simasync.Protocol { return &chatter{} })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.Validate() == nil {
		t.Fatal("Validate must fail when truncated")
	}
}

func TestLiveConfigErrors(t *testing.T) {
	mk := core.NewAsyncTradeoff(2)
	if _, err := Run(Config{N: 0, Wake: []int{0}}, mk); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1, 2}}, mk); err == nil {
		t.Fatal("empty wake accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1}, Wake: []int{0}}, mk); err == nil {
		t.Fatal("bad IDs accepted")
	}
	if _, err := Run(Config{N: 2, IDs: ids.Assignment{1, 2}, Wake: []int{5}}, mk); err == nil {
		t.Fatal("bad wake node accepted")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestLiveStressLargerClique runs the async tradeoff at a larger scale on
// the concurrent runtime, checking wake-up coverage and uniqueness.
func TestLiveStressLargerClique(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const n = 256
	ok := 0
	for seed := uint64(0); seed < 6; seed++ {
		assign := ids.Random(ids.LogUniverse(n), n, xrand.New(seed+3000))
		res, err := Run(Config{N: n, IDs: assign, Wake: []int{int(seed) % n}, Seed: seed},
			core.NewAsyncTradeoff(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Validate() == nil {
			ok++
		}
	}
	if ok < 5 {
		t.Fatalf("only %d/6 live stress runs succeeded", ok)
	}
}
