package proto

import "sync"

// This file holds the engines' hot-path scratch machinery: a pooled arena of
// per-node delivery buffers and a fixed-array message-kind counter. Both
// exist to keep the simulators' round/event loops allocation-free in steady
// state — large sweeps run the same engine back to back thousands of times,
// and recycling the O(n) scratch across runs (not just across rounds) is
// what lets RunMany hold a stable memory footprint at n >= 10^5.

// KindCounts counts messages by payload kind over a full uint8 keyspace.
// The engines increment it with one array index per message where they
// previously paid a map assign; Map converts to the sparse map form the
// Result types expose, so observable results are unchanged.
type KindCounts [256]int64

// Add records one message of the given kind.
func (k *KindCounts) Add(kind uint8) { k[kind]++ }

// Map returns the nonzero counters as the map form used by Result.PerKind.
// A kind appears in the map iff at least one message of that kind was sent —
// exactly the entries the previous map-increment representation held.
func (k *KindCounts) Map() map[uint8]int64 {
	out := make(map[uint8]int64)
	for kind, c := range k {
		if c != 0 {
			out[uint8(kind)] = c
		}
	}
	return out
}

// Arena is a run's reusable scratch: one delivery buffer per node, retained
// across rounds (capacity survives the per-round reset) and across runs
// (arenas are pooled). Acquire one with GetArena at run start and return it
// with Release when the run's Result has been assembled; nothing reachable
// from an Arena may be retained by a Result, a Protocol, or any caller after
// Release.
type Arena struct {
	inboxes [][]Delivery
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns a pooled arena with at least n inbox buffers, each reset
// to length zero. The buffers keep whatever capacity earlier runs grew them
// to, so a warm arena serves a same-shape run without allocating.
func GetArena(n int) *Arena {
	a := arenaPool.Get().(*Arena)
	if cap(a.inboxes) < n {
		a.inboxes = make([][]Delivery, n)
	}
	a.inboxes = a.inboxes[:n]
	for i := range a.inboxes {
		a.inboxes[i] = a.inboxes[i][:0]
	}
	return a
}

// Inboxes returns the arena's per-node delivery buffers.
func (a *Arena) Inboxes() [][]Delivery { return a.inboxes }

// Release returns the arena to the pool. The caller must not touch the
// arena or any slice obtained from it afterwards.
func (a *Arena) Release() { arenaPool.Put(a) }

// SendBuf is a protocol-owned reusable send buffer. The engines consume the
// slice a Protocol returns before invoking that instance again, so a
// protocol may hand out the same backing array every call; Take returns it
// resized to k (growing capacity only when needed, e.g. to Ports() for a
// broadcast round). Protocols on a hot path keep one SendBuf field instead
// of allocating a fresh []Send per Send/Receive call.
type SendBuf struct {
	buf []Send
}

// Take returns the buffer resized to length k.
func (b *SendBuf) Take(k int) []Send {
	if cap(b.buf) < k {
		b.buf = make([]Send, k)
	}
	return b.buf[:k]
}
