package proto

import "testing"

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		Undecided:    "undecided",
		Leader:       "leader",
		NonLeader:    "non-leader",
		Decision(99): "Decision(99)",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

func TestEnvPorts(t *testing.T) {
	if (Env{N: 16}).Ports() != 15 {
		t.Fatal("Ports() wrong")
	}
}

func TestMessageWords(t *testing.T) {
	if (Message{}).Words() != 3 {
		t.Fatal("CONGEST word count changed; update the engines' accounting")
	}
}

func TestZeroValueDecisionIsUndecided(t *testing.T) {
	var d Decision
	if d != Undecided {
		t.Fatal("zero value must mean undecided")
	}
}
