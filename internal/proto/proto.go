// Package proto defines the types shared by every protocol and network
// engine in this repository: messages, sends, deliveries, node environments
// and decisions.
//
// The model is the KT0 "clean network" of the paper (Section 2): a node
// initially knows only its own ID and n. It owns n-1 ports and addresses all
// communication by port number; it never addresses nodes by ID. A received
// message is annotated with the arrival port, so "reply to whoever contacted
// me" is expressible, but "send to node with ID x" is not.
//
// Messages carry a fixed-size payload (a kind tag plus two 64-bit words), so
// every protocol built on this package is CONGEST-compliant by construction:
// each message fits in O(log n) bits for any polynomial ID space.
package proto

import (
	"fmt"

	"cliquelect/internal/xrand"
)

// Decision is a node's irrevocable leader-election output. The zero value
// Undecided is meaningful: a node that has not yet decided.
type Decision uint8

const (
	// Undecided means the node has not yet produced an output bit.
	Undecided Decision = iota
	// Leader means the node output 1 (it is the unique leader).
	Leader
	// NonLeader means the node output 0.
	NonLeader
)

func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case Leader:
		return "leader"
	case NonLeader:
		return "non-leader"
	}
	return fmt.Sprintf("Decision(%d)", uint8(d))
}

// Message is a fixed-size CONGEST message: a protocol-defined kind tag and
// two integer words (typically an ID or rank, and an auxiliary value such as
// a level or iteration number).
type Message struct {
	Kind uint8
	A    int64
	B    int64
}

// Words returns the payload size in O(log n)-bit words, used by the engines'
// CONGEST accounting.
func (m Message) Words() int { return 3 }

// Send instructs the engine to transmit Msg over the sender's port Port
// (0-based, in [0, n-2]).
type Send struct {
	Port int
	Msg  Message
}

// Delivery is a received message annotated with the arrival port on the
// receiving node.
type Delivery struct {
	Port int
	Msg  Message
}

// Env is everything a node knows when it wakes up, per the KT0 model: its
// own ID, the network size n, and a private random-bit stream. On the
// default clique wiring a node has n-1 ports numbered 0..n-2; when the
// engine runs over an explicit topology, Deg and Diam describe the node's
// local wiring and the graph's diameter estimate (both 0 on the clique,
// where the values are implied by N).
type Env struct {
	ID  int64
	N   int
	RNG *xrand.RNG
	// Deg is the node's port count on an explicit topology; 0 means the
	// clique wiring, where every node has n-1 ports.
	Deg int
	// Diam is the engine's diameter estimate for the topology the node is
	// wired into; 0 means the clique (diameter 1 for n > 1). Protocols use
	// it as a safe hop-count horizon.
	Diam int
}

// Ports returns the number of ports of the node: Deg on an explicit
// topology, n-1 on the clique.
func (e Env) Ports() int {
	if e.Deg > 0 {
		return e.Deg
	}
	return e.N - 1
}
