package proto

import (
	"reflect"
	"testing"
)

func TestKindCountsMap(t *testing.T) {
	var k KindCounts
	k.Add(0)
	k.Add(3)
	k.Add(3)
	k.Add(255)
	want := map[uint8]int64{0: 1, 3: 2, 255: 1}
	if got := k.Map(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Map() = %v, want %v", got, want)
	}
	// A kind never sent must be absent, matching the map-increment semantics
	// the engines previously had.
	if _, ok := k.Map()[7]; ok {
		t.Fatal("unsent kind present in map")
	}
	var zero KindCounts
	if got := zero.Map(); len(got) != 0 {
		t.Fatalf("zero counters produced %v", got)
	}
}

func TestArenaReuse(t *testing.T) {
	a := GetArena(4)
	boxes := a.Inboxes()
	if len(boxes) != 4 {
		t.Fatalf("len = %d, want 4", len(boxes))
	}
	boxes[2] = append(boxes[2], Delivery{Port: 9})
	a.Release()

	// A warm arena must come back with length-zero buffers: stale deliveries
	// from the previous run may never leak into a new one.
	b := GetArena(3)
	for i, box := range b.Inboxes() {
		if len(box) != 0 {
			t.Fatalf("inbox %d not reset: %v", i, box)
		}
	}
	b.Release()

	// Growing past the pooled capacity must produce fresh zeroed buffers.
	c := GetArena(64)
	if len(c.Inboxes()) != 64 {
		t.Fatalf("len = %d, want 64", len(c.Inboxes()))
	}
	for i, box := range c.Inboxes() {
		if len(box) != 0 {
			t.Fatalf("inbox %d not empty after growth", i)
		}
	}
	c.Release()
}

func TestSendBufTake(t *testing.T) {
	var b SendBuf
	s1 := b.Take(3)
	if len(s1) != 3 {
		t.Fatalf("len = %d, want 3", len(s1))
	}
	s1[0] = Send{Port: 1}
	s2 := b.Take(2)
	if len(s2) != 2 {
		t.Fatalf("len = %d, want 2", len(s2))
	}
	if &s1[0] != &s2[0] {
		t.Fatal("Take reallocated despite sufficient capacity")
	}
	if s3 := b.Take(100); len(s3) != 100 {
		t.Fatalf("len = %d, want 100", len(s3))
	}
}
