// Package flatmap provides open-addressing hash containers specialized to
// uint64 keys, for the simulators' hot paths. The engines' per-run state —
// the lazy port wiring, the async FIFO clamp — is dominated by hash-table
// traffic at large n, and profiling showed the general-purpose Go map
// spending most of a sweep's CPU on hashing and bucket management there.
// These tables use linear probing over power-of-two arrays with a
// splitmix64-style mixer: no interface dispatch, no per-entry allocation,
// and Reset reuses grown capacity so pooled consumers reach steady-state
// zero allocation across runs.
//
// Keys are stored shifted by +1 so the zero word can mean "empty slot";
// callers' keys must therefore fit in 63 bits. Both current consumers pack
// two 31-bit indices, far below the limit.
//
// Containers here only ever answer membership/value questions — they never
// influence iteration order or randomness — so swapping them in for Go maps
// keeps every execution byte-identical.
package flatmap

const minSize = 16

// mix64 is the splitmix64 finalizer (the mixer xrand builds on): enough
// avalanche that linear probing sees uniformly spread packed-index keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// U64Map maps uint64 keys (< 1<<63) to uint64 values. The zero value is
// ready to use.
type U64Map struct {
	keys []uint64 // key+1, 0 = empty
	vals []uint64
	n    int
}

// Len returns the number of live entries.
func (m *U64Map) Len() int { return m.n }

// Get returns the value stored under key, if any.
func (m *U64Map) Get(key uint64) (uint64, bool) {
	if m.n == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		k := m.keys[i]
		if k == 0 {
			return 0, false
		}
		if k == key+1 {
			return m.vals[i], true
		}
	}
}

// Put inserts or overwrites the value under key.
func (m *U64Map) Put(key, val uint64) {
	if 4*(m.n+1) > 3*len(m.keys) { // grow at 75% load
		m.grow()
	}
	mask := uint64(len(m.keys) - 1)
	i := mix64(key) & mask
	for {
		k := m.keys[i]
		if k == 0 {
			m.keys[i] = key + 1
			m.vals[i] = val
			m.n++
			return
		}
		if k == key+1 {
			m.vals[i] = val
			return
		}
		i = (i + 1) & mask
	}
}

// Reset empties the map, keeping grown capacity for reuse.
func (m *U64Map) Reset() {
	clear(m.keys)
	m.n = 0
}

func (m *U64Map) grow() {
	old := *m
	size := minSize
	if len(old.keys) > 0 {
		size = 2 * len(old.keys)
	}
	m.keys = make([]uint64, size)
	m.vals = make([]uint64, size)
	mask := uint64(len(m.keys) - 1)
	for j, k := range old.keys {
		if k == 0 {
			continue
		}
		i := mix64(k-1) & mask
		for m.keys[i] != 0 {
			i = (i + 1) & mask
		}
		m.keys[i] = k
		m.vals[i] = old.vals[j]
	}
}

// U64Set is a membership set over uint64 keys (< 1<<63). The zero value is
// ready to use.
type U64Set struct {
	keys []uint64 // key+1, 0 = empty
	n    int
}

// Len returns the number of members.
func (s *U64Set) Len() int { return s.n }

// Has reports membership.
func (s *U64Set) Has(key uint64) bool {
	if s.n == 0 {
		return false
	}
	mask := uint64(len(s.keys) - 1)
	for i := mix64(key) & mask; ; i = (i + 1) & mask {
		k := s.keys[i]
		if k == 0 {
			return false
		}
		if k == key+1 {
			return true
		}
	}
}

// Add inserts key (idempotent).
func (s *U64Set) Add(key uint64) {
	if 4*(s.n+1) > 3*len(s.keys) {
		s.grow()
	}
	mask := uint64(len(s.keys) - 1)
	i := mix64(key) & mask
	for {
		k := s.keys[i]
		if k == 0 {
			s.keys[i] = key + 1
			s.n++
			return
		}
		if k == key+1 {
			return
		}
		i = (i + 1) & mask
	}
}

// Reset empties the set, keeping grown capacity for reuse.
func (s *U64Set) Reset() {
	clear(s.keys)
	s.n = 0
}

func (s *U64Set) grow() {
	old := s.keys
	size := minSize
	if len(old) > 0 {
		size = 2 * len(old)
	}
	s.keys = make([]uint64, size)
	mask := uint64(len(s.keys) - 1)
	for _, k := range old {
		if k == 0 {
			continue
		}
		i := mix64(k-1) & mask
		for s.keys[i] != 0 {
			i = (i + 1) & mask
		}
		s.keys[i] = k
	}
}
