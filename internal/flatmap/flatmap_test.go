package flatmap

import (
	"testing"

	"cliquelect/internal/xrand"
)

// TestU64MapAgainstMap drives the open-addressing table and a plain Go map
// through the same random insert/overwrite/lookup trace, including the
// key-0 edge (portmap's endpoint(0,0) == 0, representable only because keys
// are stored +1).
func TestU64MapAgainstMap(t *testing.T) {
	rng := xrand.New(42)
	var m U64Map
	ref := make(map[uint64]uint64)
	for i := 0; i < 30000; i++ {
		key := rng.Uint64() % 4096 // dense keyspace forces collisions + growth
		val := rng.Uint64()
		ref[key] = val
		m.Put(key, val)
		probe := rng.Uint64() % 8192
		gv, gok := m.Get(probe)
		wv, wok := ref[probe]
		if gok != wok || (gok && gv != wv) {
			t.Fatalf("step %d: Get(%d) = (%d,%v), want (%d,%v)", i, probe, gv, gok, wv, wok)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("table holds %d entries, map holds %d", m.Len(), len(ref))
	}
}

func TestU64MapZeroKeyAndReset(t *testing.T) {
	var m U64Map
	if _, ok := m.Get(0); ok {
		t.Fatal("empty map reports key 0 present")
	}
	m.Put(0, 77)
	if v, ok := m.Get(0); !ok || v != 77 {
		t.Fatalf("Get(0) = (%d,%v), want (77,true)", v, ok)
	}
	m.Put(0, 78) // overwrite
	if v, _ := m.Get(0); v != 78 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", m.Len())
	}
	was := cap(m.keys)
	m.Reset()
	if m.Len() != 0 || cap(m.keys) != was {
		t.Fatal("Reset must empty the map but keep capacity")
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("key survived Reset")
	}
}

func TestU64SetAgainstMap(t *testing.T) {
	rng := xrand.New(7)
	var s U64Set
	ref := make(map[uint64]struct{})
	for i := 0; i < 30000; i++ {
		key := rng.Uint64() % 4096
		ref[key] = struct{}{}
		s.Add(key)
		probe := rng.Uint64() % 8192
		_, wok := ref[probe]
		if got := s.Has(probe); got != wok {
			t.Fatalf("step %d: Has(%d) = %v, want %v", i, probe, got, wok)
		}
	}
	if s.Len() != len(ref) {
		t.Fatalf("set holds %d entries, map holds %d", s.Len(), len(ref))
	}
	s.Reset()
	if s.Len() != 0 || s.Has(1) {
		t.Fatal("Reset must empty the set")
	}
}
